package mess_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/mess-sim/mess"
)

// The facade tests exercise the library exactly as an external user would.

func TestPlatformsExposed(t *testing.T) {
	ps := mess.Platforms()
	if len(ps) != 8 {
		t.Fatalf("platforms = %d, want 8", len(ps))
	}
	sk := mess.Skylake()
	if sk.TheoreticalBandwidthGBs() < 120 || sk.TheoreticalBandwidthGBs() > 132 {
		t.Fatalf("Skylake theoretical BW = %.0f", sk.TheoreticalBandwidthGBs())
	}
	if _, err := mess.PlatformByName("Intel Skylake"); err != nil {
		t.Fatal(err)
	}
	if _, err := mess.PlatformByName("bogus"); err == nil {
		t.Fatal("bogus platform accepted")
	}
}

func TestCharacterizeAndPersist(t *testing.T) {
	spec := mess.CascadeLake()
	spec.Cores = 8 // trim for test speed
	spec.DRAM.Channels = 3
	res, err := mess.Characterize(spec, mess.QuickBenchmarkOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Family.Validate(); err != nil {
		t.Fatal(err)
	}

	var csv bytes.Buffer
	if err := mess.WriteCurvesCSV(&csv, res.Family); err != nil {
		t.Fatal(err)
	}
	back, err := mess.ReadCurvesCSV(&csv)
	if err != nil {
		t.Fatal(err)
	}
	if back.Label != res.Family.Label {
		t.Fatalf("label lost in round trip: %q", back.Label)
	}

	var chart bytes.Buffer
	if err := mess.PlotCurves(&chart, res.Family, 60, 14); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart.String(), "latency [ns]") {
		t.Fatal("plot missing axes annotation")
	}
}

func TestCharacterizeServedFromCache(t *testing.T) {
	spec := mess.Power9()
	spec.Cores = 6
	spec.DRAM.Channels = 3

	before := mess.DefaultCharacterizationService().Stats()
	first, err := mess.Characterize(spec, mess.QuickBenchmarkOptions())
	if err != nil {
		t.Fatal(err)
	}
	second, err := mess.Characterize(spec, mess.QuickBenchmarkOptions())
	if err != nil {
		t.Fatal(err)
	}
	after := mess.DefaultCharacterizationService().Stats()

	if got := after.Runs - before.Runs; got != 1 {
		t.Fatalf("two identical Characterize calls ran %d simulations, want 1", got)
	}
	if after.MemoryHits-before.MemoryHits < 1 {
		t.Fatalf("second Characterize not served from cache: %+v -> %+v", before, after)
	}
	if len(second.Samples) != len(first.Samples) {
		t.Fatalf("cached result lost samples: %d vs %d", len(second.Samples), len(first.Samples))
	}
	// Results are isolated copies: mutating one must not leak into the next.
	second.Family.Label = "scribbled"
	third, err := mess.Characterize(spec, mess.QuickBenchmarkOptions())
	if err != nil {
		t.Fatal(err)
	}
	if third.Family.Label == "scribbled" {
		t.Fatal("cached family shared mutable state across callers")
	}

	// A different sweep is a different key: it must simulate afresh.
	opt := mess.QuickBenchmarkOptions()
	opt.PacesNs = []float64{0, 32}
	if _, err := mess.Characterize(spec, opt); err != nil {
		t.Fatal(err)
	}
	final := mess.DefaultCharacterizationService().Stats()
	if got := final.Runs - after.Runs; got != 1 {
		t.Fatalf("changed options ran %d simulations, want 1 fresh run", got)
	}
}

func TestSimulatorFacade(t *testing.T) {
	fam := mustQuickFamily(t)
	eng := mess.NewEngine()
	model := mess.NewSimulator(eng, mess.SimulatorConfig{Family: fam})

	completed := 0
	var latSum mess.SimTime
	var line uint64
	var issue func()
	issue = func() {
		addr := (line%8)*(1<<28) + (line/8)*64
		line++
		start := eng.Now()
		model.Access(&mess.MemRequest{Addr: addr, Op: mess.MemRead, Done: func(at mess.SimTime, _ *mess.MemRequest) {
			completed++
			latSum += at - start
			if eng.Now() < mess.Millisecond {
				issue()
			}
		}})
	}
	for i := 0; i < 32; i++ {
		issue()
	}
	eng.RunUntil(mess.Millisecond)
	if completed == 0 {
		t.Fatal("no requests completed")
	}
	mean := (latSum / mess.SimTime(completed)).Nanoseconds()
	if mean < 40 || mean > 2000 {
		t.Fatalf("mean latency %.0f ns implausible", mean)
	}
}

var cachedFam *mess.Family

func mustQuickFamily(t *testing.T) *mess.Family {
	t.Helper()
	if cachedFam != nil {
		return cachedFam
	}
	spec := mess.Skylake()
	spec.Cores = 8
	spec.DRAM.Channels = 3
	res, err := mess.Characterize(spec, mess.QuickBenchmarkOptions())
	if err != nil {
		t.Fatal(err)
	}
	cachedFam = res.Family
	return cachedFam
}

func TestMemoryModelZooFacade(t *testing.T) {
	if len(mess.MemoryModels()) < 8 {
		t.Fatal("zoo incomplete")
	}
	fam := mustQuickFamily(t)
	spec := mess.Skylake()
	for _, kind := range mess.MemoryModels() {
		eng := mess.NewEngine()
		m, err := mess.NewMemoryModel(kind, eng, spec, fam)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		done := false
		m.Access(&mess.MemRequest{Addr: 64, Op: mess.MemRead, Done: func(_ mess.SimTime, _ *mess.MemRequest) { done = true }})
		eng.RunUntil(10 * mess.Microsecond)
		if !done {
			t.Fatalf("%s did not complete a read", kind)
		}
	}
}

func TestWorkloadFacade(t *testing.T) {
	spec := mess.Skylake()
	spec.Cores = 6
	spec.DRAM.Channels = 3
	r, err := mess.RunWorkload(spec, mess.StreamTriad, mess.WorkloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 || r.AppBWGBs <= 0 {
		t.Fatalf("triad result %+v", r)
	}
	if len(mess.SpecSuite()) < 25 {
		t.Fatal("SPEC suite incomplete")
	}
}

func TestProfilingFacade(t *testing.T) {
	spec := mess.CascadeLake()
	spec.Cores = 6
	spec.DRAM.Channels = 3
	fam := mustQuickFamily(t)

	app := mess.NewHPCGProxy(spec)
	sampler := mess.NewSampler(app.Eng, app.Counting, 10*mess.Microsecond)
	sampler.Start()
	app.Run(400 * mess.Microsecond)
	sampler.Stop()

	var phases []mess.PhaseSpan
	for _, e := range app.Events() {
		phases = append(phases, mess.PhaseSpan{Name: e.Name, Start: e.Start, End: e.End, MPI: e.MPI})
	}
	p := mess.BuildProfile("hpcg", fam, sampler.Windows(), phases, mess.DefaultStressWeights)
	if len(p.Samples) == 0 {
		t.Fatal("no profile samples")
	}
	if p.MaxStress() <= 0 {
		t.Fatal("no stress measured")
	}
}

func TestExperimentRegistryFacade(t *testing.T) {
	exps := mess.Experiments()
	if len(exps) < 25 {
		t.Fatalf("registry has %d experiments", len(exps))
	}
	if _, err := mess.RunExperiment("nope", mess.ScaleQuick); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	res, err := mess.RunExperiment("fig2", mess.ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 2") {
		t.Fatal("render missing paper reference")
	}
}

func TestUnloadedLatencyFacade(t *testing.T) {
	spec := mess.Skylake()
	spec.Cores = 4
	spec.DRAM.Channels = 2
	lat, err := mess.MeasureUnloadedLatency(spec)
	if err != nil {
		t.Fatal(err)
	}
	if lat < 70 || lat > 110 {
		t.Fatalf("unloaded latency %.0f ns out of calibration", lat)
	}
}

// TestTraceReplayFacade drives the trace pipeline exactly as an external
// user would: capture from a running engine, round-trip through the text
// format, full replay, then sampled replay with divergence inside the
// reported error bars.
func TestTraceReplayFacade(t *testing.T) {
	spec := mess.Skylake()
	spec.Cores = 2
	spec.DRAM.Channels = 2

	// Build a synthetic trace through the public types. The arrival rate
	// stays below what the backend sustains — the sampling contract covers
	// quasi-stationary traffic, as captured closed-loop traces are.
	tr := &mess.Trace{}
	var at mess.SimTime
	for i := 0; i < 20000; i++ {
		if i%4 != 0 {
			at += mess.SimTime(10000 + (i%3)*4000) // 10–18 ns gaps
		}
		tr.Records = append(tr.Records, mess.TraceRecord{
			At:    at,
			Addr:  uint64((i*131)%65536) * 64,
			Write: i%5 == 0,
		})
	}

	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := mess.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(got.Records), len(tr.Records))
	}

	mk := func(eng *mess.Engine) mess.MemBackend {
		m, err := mess.NewMemoryModel(mess.ModelReference, eng, spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	eng := mess.NewEngine()
	full := mess.ReplayTrace(eng, mk(eng), got)
	if full.Reads == 0 || full.BWGBs <= 0 {
		t.Fatalf("full replay produced %+v", full)
	}

	sam, err := mess.SampledReplayTrace(mk, spec, got, mess.TraceSampleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if d := sam.DivergencePct(full); d > 5 {
		t.Errorf("sampled divergence %.1f%% > 5%%: full %+v sampled %+v", d, full, sam.Estimate)
	}
	if sam.SpeedupX < 2 {
		t.Errorf("speedup %.1f×, sampling saved no work", sam.SpeedupX)
	}
}
