// Profiling: the Mess application-profiling pipeline of Sec. VI on the
// HPCG proxy — sample the bandwidth counters per window, position every
// window on the platform's curves, derive stress scores and correlate them
// with the application's phase timeline.
package main

import (
	"fmt"
	"log"

	"github.com/mess-sim/mess"
)

func main() {
	spec := mess.CascadeLake()

	// Step 1: the platform's curve family (normally measured once and
	// reused; here a quick sweep).
	fmt.Printf("characterizing %s ...\n", spec.Name)
	res, err := mess.Characterize(spec, mess.QuickBenchmarkOptions())
	if err != nil {
		log.Fatal(err)
	}
	fam := res.Family

	// Step 2: run the application with the window sampler attached (the
	// Extrae role).
	fmt.Println("running the HPCG proxy ...")
	app := mess.NewHPCGProxy(spec)
	sampler := mess.NewSampler(app.Eng, app.Counting, 10*mess.Microsecond)
	sampler.Start()
	app.Run(1500 * mess.Microsecond)
	sampler.Stop()

	// Step 3: analysis (the Paraver role): position windows on the
	// curves and attach the phase timeline.
	var phases []mess.PhaseSpan
	for _, e := range app.Events() {
		phases = append(phases, mess.PhaseSpan{Name: e.Name, Start: e.Start, End: e.End, MPI: e.MPI})
	}
	p := mess.BuildProfile("HPCG on "+spec.Name, fam, sampler.Windows(), phases, mess.DefaultStressWeights)

	m := fam.Metrics()
	fmt.Printf("\nsaturation onset: %.0f GB/s; windows in the saturated area: %.0f%%\n",
		m.SatBWLowGBs, 100*p.SaturatedFraction())
	fmt.Printf("maximum stress score: %.2f\n\n", p.MaxStress())

	order, byPhase := p.MeanStressByPhase()
	fmt.Println("mean stress score per phase:")
	for _, name := range order {
		fmt.Printf("  %-14s %.2f\n", name, byPhase[name])
	}

	fmt.Println("\ntimeline excerpt:")
	for i, s := range p.Samples {
		if i == 15 {
			break
		}
		marker := ""
		if s.MPI {
			marker = " (MPI)"
		}
		fmt.Printf("  %5.0f–%5.0f µs  %-12s %6.1f GB/s  %4.0f ns  stress %.2f%s\n",
			s.Start.Seconds()*1e6, s.End.Seconds()*1e6, s.Phase, s.BWGBs, s.LatencyNs, s.Stress, marker)
	}
}
