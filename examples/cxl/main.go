// CXL: measure the modelled CXL memory expander's bandwidth–latency curves
// (the manufacturer's-model stand-in of Sec. V-C), show the full-duplex
// signature, and drive the Mess analytical simulator with the device curves
// at several concurrency levels.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/mess-sim/mess"
)

func main() {
	fmt.Println("measuring the CXL expander curves (full-duplex link + DDR5-5600) ...")
	fam := mess.CXLFamily()
	if err := mess.PlotCurves(os.Stdout, fam, 76, 20); err != nil {
		log.Fatal(err)
	}

	// The CXL signature: balanced read/write traffic beats both pure
	// directions — the inverse of every DDR system in the paper.
	balanced := fam.Nearest(0.5)
	pureRead := fam.Nearest(1.0)
	pureWrite := fam.Nearest(0.0)
	fmt.Printf("\nmax bandwidth by composition:\n")
	fmt.Printf("  100%% read:       %6.1f GB/s (one link direction saturates)\n", pureRead.MaxBW())
	fmt.Printf("  balanced 50/50:  %6.1f GB/s (both directions + DDR device)\n", balanced.MaxBW())
	fmt.Printf("  100%% write:      %6.1f GB/s\n", pureWrite.MaxBW())

	// Drive the Mess analytical simulator with the device curves: a
	// closed-loop requester with growing concurrency walks up the curve.
	fmt.Println("\nMess simulator over the CXL curves (closed-loop read traffic):")
	fmt.Printf("  %-12s %-14s %s\n", "outstanding", "bandwidth", "mean latency")
	for _, depth := range []int{4, 16, 64, 192} {
		bw, lat := runClosedLoop(fam, depth)
		fmt.Printf("  %-12d %8.1f GB/s %8.0f ns\n", depth, bw, lat)
	}
}

// runClosedLoop keeps depth reads outstanding against the Mess simulator
// for one simulated millisecond and reports (GB/s, mean latency ns).
// Requests follow the pooled lifecycle: acquired from a MemRequestPool
// with one stored completion callback (the issue time rides in Issued),
// and recycled automatically when the simulator completes them — the
// steady-state loop allocates nothing.
func runClosedLoop(fam *mess.Family, depth int) (float64, float64) {
	eng := mess.NewEngine()
	model := mess.NewSimulator(eng, mess.SimulatorConfig{Family: fam})
	pool := mess.NewMemRequestPool()
	dur := mess.Millisecond

	completed := 0
	var latSum mess.SimTime
	var line uint64
	var issue func()
	done := func(at mess.SimTime, req *mess.MemRequest) {
		completed++
		latSum += at - req.Issued
		if eng.Now() < dur {
			issue()
		}
	}
	issue = func() {
		addr := (line%8)*(1<<28) + (line/8)*64
		line++
		req := pool.Get(addr, mess.MemRead, done)
		req.Issued = eng.Now()
		model.Access(req)
	}
	for i := 0; i < depth; i++ {
		issue()
	}
	eng.RunUntil(dur)

	if completed == 0 {
		return 0, 0
	}
	bw := float64(completed*64) / dur.Seconds() / 1e9
	return bw, (latSum / mess.SimTime(completed)).Nanoseconds()
}
