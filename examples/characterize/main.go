// Characterize all eight platforms of the paper's Table I and print the
// quantitative comparison: saturated-bandwidth range, unloaded latency and
// maximum latency range, next to the paper's measured values.
package main

import (
	"fmt"
	"log"
	"sync"

	"github.com/mess-sim/mess"
)

type row struct {
	name    string
	metrics mess.Metrics
}

func main() {
	specs := mess.Platforms()
	rows := make([]row, len(specs))

	// Each characterization owns its engines; platforms parallelize
	// cleanly.
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec mess.Platform) {
			defer wg.Done()
			res, err := mess.Characterize(spec, mess.QuickBenchmarkOptions())
			if err != nil {
				log.Fatalf("%s: %v", spec.Name, err)
			}
			rows[i] = row{name: spec.Name, metrics: res.Family.Metrics()}
		}(i, spec)
	}
	wg.Wait()

	paperUnloaded := []float64{89, 85, 113, 96, 129, 109, 122, 363}
	paperSat := []string{"72–91%", "68–87%", "57–71%", "67–91%", "63–95%", "60–86%", "72–92%", "51–95%"}

	fmt.Printf("%-24s %-14s %-10s %-12s %-8s %s\n",
		"platform", "sat. range", "(paper)", "unloaded", "(paper)", "max latency")
	for i, r := range rows {
		m := r.metrics
		fmt.Printf("%-24s %3.0f–%3.0f%%      %-10s %6.0f ns    %4.0f ns  %.0f–%.0f ns\n",
			r.name,
			100*m.SatLowFrac(), 100*m.SatHighFrac(), paperSat[i],
			m.UnloadedLatencyNs, paperUnloaded[i],
			m.MaxLatencyMinNs, m.MaxLatencyMaxNs)
	}
	fmt.Println("\n(quick sweep; run cmd/messexp -run table1 -scale full for the dense version)")
}
