// Characterize all eight platforms of the paper's Table I and print the
// quantitative comparison: saturated-bandwidth range, unloaded latency and
// maximum latency range, next to the paper's measured values.
package main

import (
	"fmt"
	"log"

	"github.com/mess-sim/mess"
)

func main() {
	specs := mess.Platforms()

	// The characterization service fans the eight platforms out over its
	// bounded worker pool and memoizes each family by content-addressed
	// key, so repeat requests cost nothing.
	svc := mess.NewCharacterizationService(mess.CharacterizationConfig{})
	reqs := make([]mess.CharacterizationRequest, len(specs))
	for i, spec := range specs {
		opt := mess.QuickBenchmarkOptions()
		if spec.UnloadedLatencyNs > 200 {
			// GPU-class platforms (H100) queue so deeply at saturation
			// that the quick 15 µs window records no chase samples.
			opt.Measure = 45 * mess.Microsecond
		}
		reqs[i] = mess.CharacterizationRequest{Spec: spec, Options: opt}
	}
	arts, err := svc.CharacterizeAll(reqs)
	if err != nil {
		log.Fatal(err)
	}

	paperUnloaded := []float64{89, 85, 113, 96, 129, 109, 122, 363}
	paperSat := []string{"72–91%", "68–87%", "57–71%", "67–91%", "63–95%", "60–86%", "72–92%", "51–95%"}

	fmt.Printf("%-24s %-14s %-10s %-12s %-8s %s\n",
		"platform", "sat. range", "(paper)", "unloaded", "(paper)", "max latency")
	for i, art := range arts {
		m := art.Family.Metrics()
		fmt.Printf("%-24s %3.0f–%3.0f%%      %-10s %6.0f ns    %4.0f ns  %.0f–%.0f ns\n",
			specs[i].Name,
			100*m.SatLowFrac(), 100*m.SatHighFrac(), paperSat[i],
			m.UnloadedLatencyNs, paperUnloaded[i],
			m.MaxLatencyMinNs, m.MaxLatencyMaxNs)
	}
	stats := svc.Stats()
	fmt.Printf("\nservice ran %d simulations for %d platforms\n", stats.Runs, len(specs))
	fmt.Println("(quick sweep; run cmd/messexp -run table1 -scale full for the dense version)")
}
