// Simulator-eval: the Sec. V methodology in miniature — measure a
// platform's curves, build the Mess analytical simulator from them, and
// compare workload IPC under Mess and under baseline memory models against
// the detailed reference.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/mess-sim/mess"
)

func main() {
	spec := mess.Skylake()

	fmt.Printf("reference characterization of %s ...\n", spec.Name)
	ref, err := mess.Characterize(spec, mess.QuickBenchmarkOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running STREAM + latency benchmarks on the reference platform ...")
	refResults, err := mess.RunEvalSuite(spec, mess.WorkloadOptions{})
	if err != nil {
		log.Fatal(err)
	}

	kinds := []mess.MemoryModelKind{mess.ModelFixed, mess.ModelMD1, mess.ModelMess}
	fmt.Printf("\nabsolute IPC error vs the reference platform:\n")
	fmt.Printf("%-14s", "model")
	for _, b := range refResults {
		fmt.Printf(" %14s", b.Name)
	}
	fmt.Printf(" %10s\n", "average")

	for _, kind := range kinds {
		kind := kind
		o := mess.WorkloadOptions{Backend: func(eng *mess.Engine) mess.MemBackend {
			m, err := mess.NewMemoryModel(kind, eng, spec, ref.Family)
			if err != nil {
				log.Fatal(err)
			}
			return m
		}}
		got, err := mess.RunEvalSuite(spec, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s", kind)
		sum := 0.0
		for i := range refResults {
			e := math.Abs(got[i].IPC-refResults[i].IPC) / refResults[i].IPC
			sum += e
			fmt.Printf(" %13.1f%%", 100*e)
		}
		fmt.Printf(" %9.1f%%\n", 100*sum/float64(len(refResults)))
	}
	fmt.Println("\n(the Mess analytical simulator should show the lowest error, as in Figs. 11 and 13)")
}
