// Quickstart: characterize a platform with the Mess benchmark, print its
// bandwidth–latency curves and the Table-I-style derived metrics.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/mess-sim/mess"
)

func main() {
	// Pick one of the paper's platforms (see mess.Platforms()).
	spec := mess.Skylake()
	fmt.Println("platform:", spec.String())

	// Run a reduced Mess benchmark sweep: three read/write kernel mixes,
	// a coarse pacing ladder. mess.BenchmarkOptions{} runs the full
	// sweep instead.
	res, err := mess.Characterize(spec, mess.QuickBenchmarkOptions())
	if err != nil {
		log.Fatal(err)
	}

	// The curve family is the central artifact: latency as a function of
	// used bandwidth, one curve per traffic composition.
	if err := mess.PlotCurves(os.Stdout, res.Family, 76, 20); err != nil {
		log.Fatal(err)
	}

	// Derived metrics (the paper's Table I quantities).
	m := res.Family.Metrics()
	fmt.Println()
	fmt.Println("unloaded latency:     ", fmt.Sprintf("%.0f ns", m.UnloadedLatencyNs))
	fmt.Println("maximum latency range:", fmt.Sprintf("%.0f–%.0f ns", m.MaxLatencyMinNs, m.MaxLatencyMaxNs))
	fmt.Println("saturated bandwidth:  ", fmt.Sprintf("%.0f–%.0f GB/s (%.0f–%.0f%% of theoretical)",
		m.SatBWLowGBs, m.SatBWHighGBs, 100*m.SatLowFrac(), 100*m.SatHighFrac()))

	// Position an arbitrary workload on the curves: 80 GB/s of pure-read
	// traffic, and its memory stress score.
	bw := 80.0
	lat := res.Family.LatencyAt(1.0, bw)
	stress := res.Family.StressScore(1.0, bw, mess.DefaultStressWeights)
	fmt.Printf("\nat %.0f GB/s of pure reads: latency ≈ %.0f ns, stress score %.2f\n", bw, lat, stress)
}
